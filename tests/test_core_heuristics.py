"""Placement heuristics: the paper's two "tested in advance" thresholds."""


from repro.core.config import OPTIMIZED
from repro.core.heuristics import (
    BORDER_GPU_MIN_SIDE,
    REDUCTION_STAGE2_GPU_MIN_PARTIALS,
    border_cpu_time,
    border_crossover_side,
    border_gpu_time,
    border_on_gpu,
    reduction_stage2_on_gpu,
)
from repro.simgpu.device import W8000


class TestBorderPlacement:
    def test_forced_placements(self):
        assert border_on_gpu(OPTIMIZED.with_(border_place="gpu"), 64, 64)
        assert not border_on_gpu(OPTIMIZED.with_(border_place="cpu"),
                                 8192, 8192)

    def test_auto_uses_768_threshold(self):
        auto = OPTIMIZED.with_(border_place="auto")
        assert not border_on_gpu(auto, 704, 704)
        assert border_on_gpu(auto, 768, 768)
        assert border_on_gpu(auto, 4096, 4096)

    def test_auto_uses_min_side(self):
        auto = OPTIMIZED.with_(border_place="auto")
        assert not border_on_gpu(auto, 4096, 256)

    def test_paper_constant(self):
        assert BORDER_GPU_MIN_SIDE == 768


class TestBorderCrossover:
    def test_model_crossover_matches_paper(self):
        """The cost model's own advance test lands on the paper's 768."""
        assert border_crossover_side() == 768

    def test_cpu_grows_quadratically_gpu_linearly(self):
        """The mechanism: CPU pays the upscaled-buffer transfer (O(N^2)),
        the GPU kernel is latency-bound on a line (O(N))."""
        cpu_ratio = border_cpu_time(2048, 2048) / border_cpu_time(1024, 1024)
        gpu_ratio = border_gpu_time(2048, 2048) / border_gpu_time(1024, 1024)
        assert cpu_ratio > 3.0       # ~quadratic
        assert gpu_ratio < 2.2       # ~linear

    def test_gpu_wins_at_all_paper_sizes_above_threshold(self):
        for side in (768, 832, 1024, 2048, 4096):
            assert border_gpu_time(side, side) < border_cpu_time(side, side)

    def test_cpu_wins_at_paper_sizes_below_threshold(self):
        for side in (448, 576, 704):
            assert border_cpu_time(side, side) < border_gpu_time(side, side)

    def test_map_mode_changes_cpu_cost(self):
        rw = border_cpu_time(448, 448, transfer_mode="rw")
        mp = border_cpu_time(448, 448, transfer_mode="map")
        assert mp != rw


class TestReductionStage2:
    def test_forced(self):
        assert reduction_stage2_on_gpu(
            OPTIMIZED.with_(reduction_stage2="gpu"), 1)
        assert not reduction_stage2_on_gpu(
            OPTIMIZED.with_(reduction_stage2="cpu"), 10**6)

    def test_auto_threshold(self):
        auto = OPTIMIZED.with_(reduction_stage2="auto")
        assert not reduction_stage2_on_gpu(
            auto, REDUCTION_STAGE2_GPU_MIN_PARTIALS)
        assert reduction_stage2_on_gpu(
            auto, REDUCTION_STAGE2_GPU_MIN_PARTIALS + 1)

    def test_4096_image_uses_gpu_stage2(self):
        """A 4096^2 image produces 16384 stage-1 partials — "abundant"."""
        n_partials = (4096 * 4096) // 1024
        assert reduction_stage2_on_gpu(
            OPTIMIZED.with_(reduction_stage2="auto"), n_partials)

    def test_1024_image_uses_cpu_stage2(self):
        n_partials = (1024 * 1024) // 1024
        assert not reduction_stage2_on_gpu(
            OPTIMIZED.with_(reduction_stage2="auto"), n_partials)


class TestGpuBorderTimeShape:
    def test_latency_term_dominates_at_paper_sizes(self):
        t = border_gpu_time(768, 768)
        serial = 768 * W8000.mem_latency_s
        assert serial / t > 0.8
