"""Device specs and the PCI-E transfer model."""

import pytest

from repro.errors import ValidationError
from repro.simgpu.device import CPUSpec, DeviceSpec, I5_3470, W8000
from repro.simgpu.pcie import PCIeSpec


class TestDeviceSpec:
    def test_w8000_matches_table1(self):
        assert W8000.n_cores == 1792
        assert W8000.clock_ghz == 0.88
        assert W8000.peak_gflops == 3230.0
        assert W8000.mem_bandwidth_gbps == 176.0
        assert W8000.wavefront_size == 64

    def test_i5_matches_table1(self):
        assert I5_3470.n_cores == 4
        assert I5_3470.clock_ghz == 3.2
        assert I5_3470.peak_gflops == 57.76
        assert I5_3470.mem_bandwidth_gbps == 25.0

    def test_effective_rates(self):
        assert W8000.effective_gflops == pytest.approx(
            W8000.peak_gflops * W8000.compute_efficiency
        )
        assert W8000.effective_bandwidth_bps == pytest.approx(
            W8000.mem_bandwidth_gbps * 1e9 * W8000.mem_efficiency
        )

    def test_with_replaces_fields(self):
        d = W8000.with_(wavefront_size=32)
        assert d.wavefront_size == 32
        assert W8000.wavefront_size == 64  # original untouched

    def test_invalid_wavefront_rejected(self):
        with pytest.raises(ValidationError):
            W8000.with_(wavefront_size=48)

    def test_workgroup_wavefront_multiple_enforced(self):
        with pytest.raises(ValidationError):
            W8000.with_(max_workgroup_size=200)

    def test_efficiency_bounds(self):
        with pytest.raises(ValidationError):
            W8000.with_(mem_efficiency=0.0)
        with pytest.raises(ValidationError):
            W8000.with_(compute_efficiency=1.5)

    def test_cpu_with(self):
        c = I5_3470.with_(efficiency=0.5)
        assert isinstance(c, CPUSpec)
        assert c.effective_gflops == pytest.approx(57.76 * 0.5)


class TestPCIe:
    def test_rw_has_fixed_overhead(self):
        p = PCIeSpec()
        assert p.rw_time(0) == p.rw_call_overhead_s
        assert p.rw_time(1) > p.rw_call_overhead_s

    def test_rw_linear_in_bytes(self):
        p = PCIeSpec()
        base = p.rw_time(0)
        assert p.rw_time(2_000_000) - base == pytest.approx(
            2 * (p.rw_time(1_000_000) - base), rel=1e-9
        )

    def test_map_cheaper_for_small(self):
        p = PCIeSpec()
        assert p.map_time(64 * 64) < p.rw_time(64 * 64)

    def test_rw_cheaper_for_large(self):
        p = PCIeSpec()
        big = 64 * 1024 * 1024
        assert p.rw_time(big) < p.map_time(big)

    def test_crossover_between_2048_and_4096_images(self):
        """The paper's transfer switch pays off only at 4096^2 (Fig. 14)."""
        p = PCIeSpec()
        assert 2048 * 2048 < p.crossover_bytes() < 4096 * 4096

    def test_crossover_consistent_with_times(self):
        p = PCIeSpec()
        b = int(p.crossover_bytes())
        assert p.map_time(b - 10**5) < p.rw_time(b - 10**5)
        assert p.rw_time(b + 10**5) < p.map_time(b + 10**5)

    def test_rect_charges_per_row(self):
        p = PCIeSpec()
        few = p.rect_time(1_000_000, 10)
        many = p.rect_time(1_000_000, 1000)
        assert many > few

    def test_rect_cheaper_than_host_padding_plus_write(self):
        """Section V.A: padding during the transfer beats padding on the
        CPU then bulk-writing, for realistic image sizes."""
        from repro.cpu.cost import padding_host_time

        p = PCIeSpec()
        for side in (1024, 2048, 4096):
            nbytes = side * side
            rect = p.rect_time(nbytes, side)
            host_pad = padding_host_time(side, side) + p.rw_time(nbytes)
            assert rect < host_pad, side

    def test_negative_bytes_rejected(self):
        p = PCIeSpec()
        with pytest.raises(ValidationError):
            p.rw_time(-1)
        with pytest.raises(ValidationError):
            p.map_time(-1)
        with pytest.raises(ValidationError):
            p.rect_time(10, 0)

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValidationError):
            PCIeSpec(bandwidth_gbps=0.0)


class TestDeviceSpecValidation:
    def test_bad_cu_count(self):
        with pytest.raises(ValidationError):
            DeviceSpec(
                name="x", n_compute_units=0, wavefront_size=64,
                clock_ghz=1.0, peak_gflops=1.0, mem_bandwidth_gbps=1.0,
                lds_bandwidth_gbps=1.0, mem_latency_s=1e-7,
                local_mem_per_cu=1024, max_workgroup_size=64,
                compute_efficiency=0.5, mem_efficiency=0.5,
                launch_overhead_s=1e-6, sync_overhead_s=1e-6,
                barrier_wavefront_s=1e-9, heavy_op_flops=10.0,
                builtin_heavy_op_flops=5.0, divergent_branch_penalty=2.0,
                slow_int_op_flops=10.0, fast_int_op_flops=1.0,
            )
