"""Project invariant linter: conventions hold repo-wide, fixtures violate."""

import pathlib

import pytest

from repro.analysis.findings import Severity
from repro.analysis.project import lint_file, lint_paths

pytestmark = pytest.mark.analysis

REPO = pathlib.Path(__file__).resolve().parents[1]
PKG = REPO / "src" / "repro"
PROJ = REPO / "tests" / "fixtures" / "analysis" / "proj"


def proj_findings(rel: str):
    return lint_file(PROJ / rel, package_root=PROJ)


def test_real_package_has_no_lint_errors():
    paths = [p for p in PKG.rglob("*.py") if "__pycache__" not in p.parts]
    errors = [f for f in lint_paths(paths, package_root=PKG)
              if f.severity >= Severity.ERROR]
    assert not errors, "\n".join(f.format() for f in errors)


def test_metric_naming_rule():
    findings = {f.rule: f for f in proj_findings("conventions.py")}
    assert "PL-METRIC" in findings
    assert "frames_total" in findings["PL-METRIC"].message


def test_raise_taxonomy_rule():
    findings = {f.rule for f in proj_findings("conventions.py")}
    assert "PL-RAISE" in findings


def test_bare_except_is_an_error_broad_except_a_warning():
    by_rule = {}
    for f in proj_findings("conventions.py"):
        by_rule.setdefault(f.rule, []).append(f)
    assert by_rule["PL-EXCEPT"][0].severity is Severity.ERROR
    assert by_rule["PL-BROAD-EXCEPT"][0].severity is Severity.WARNING


def test_broad_except_suppression_comment_works():
    scopes = {f.scope for f in proj_findings("conventions.py")
              if f.rule == "PL-BROAD-EXCEPT"}
    assert "broad_except" in scopes
    assert "suppressed_broad_except" not in scopes


def test_atomic_write_rule():
    findings = [f for f in proj_findings("conventions.py")
                if f.rule == "PL-ATOMIC"]
    assert len(findings) == 1
    assert findings[0].scope == "non_atomic_write"
    assert "os.replace" in findings[0].message


def test_deterministic_replay_rule_fires_inside_replayed_prefixes():
    rules = [f.rule for f in proj_findings("simgpu/uses_clock.py")]
    assert rules.count("PL-TIME") == 2


def test_deterministic_replay_rule_is_path_scoped():
    """The same file outside a replayed prefix is not PL-TIME's business."""
    findings = lint_file(PROJ / "simgpu" / "uses_clock.py",
                         package_root=PROJ / "simgpu")
    assert all(f.rule != "PL-TIME" for f in findings)


def test_atomic_write_helpers_are_themselves_clean():
    findings = lint_file(PKG / "util" / "io.py", package_root=PKG)
    assert all(f.rule != "PL-ATOMIC" for f in findings)
