"""The dependency-aware resource scheduler (copy/compute overlap)."""

import pytest

from repro.errors import ValidationError
from repro.simgpu.profiling import Timeline
from repro.simgpu.schedule import (
    KIND_TO_RESOURCE,
    ResourceScheduler,
    pipelined_schedule,
)


def _tl(*events):
    tl = Timeline()
    for name, kind, dur in events:
        tl.record(name, kind, dur)
    return tl


class TestResourceScheduler:
    def test_independent_ops_on_different_resources_overlap(self):
        s = ResourceScheduler()
        s.add("copy", "transfer", 10.0, "dma")
        s.add("kern", "kernel", 10.0, "compute")
        tl = s.schedule()
        assert tl.total == 10.0  # fully parallel

    def test_same_resource_serializes(self):
        s = ResourceScheduler()
        s.add("a", "kernel", 10.0, "compute")
        s.add("b", "kernel", 10.0, "compute")
        assert s.schedule().total == 20.0

    def test_dependencies_respected(self):
        s = ResourceScheduler()
        a = s.add("copy", "transfer", 10.0, "dma")
        s.add("kern", "kernel", 5.0, "compute", deps=[a])
        tl = s.schedule()
        kern = [e for e in tl.events if e.name == "kern"][0]
        assert kern.start == 10.0
        assert tl.total == 15.0

    def test_gap_filling(self):
        """A short op slots into an idle gap left by dependencies."""
        s = ResourceScheduler()
        a = s.add("upload", "transfer", 10.0, "dma")
        k = s.add("kern", "kernel", 20.0, "compute", deps=[a])
        s.add("readback", "transfer", 5.0, "dma", deps=[k])
        # Independent op: fits right after the upload, under the kernel.
        s.add("upload2", "transfer", 8.0, "dma")
        tl = s.schedule()
        up2 = [e for e in tl.events if e.name == "upload2"][0]
        assert up2.start == 10.0
        assert tl.total == 35.0  # unchanged makespan

    def test_ready_op_preempts_slot_of_later_dependent(self):
        """An independent op that is ready early claims the resource ahead
        of a dependent op that only becomes ready later (ready-time
        priority), which delays the dependent op."""
        s = ResourceScheduler()
        a = s.add("upload", "transfer", 10.0, "dma")
        k = s.add("kern", "kernel", 4.0, "compute", deps=[a])
        s.add("readback", "transfer", 5.0, "dma", deps=[k])
        s.add("big", "transfer", 6.0, "dma")  # independent, ready at 0
        tl = s.schedule()
        big = [e for e in tl.events if e.name == "big"][0]
        readback = [e for e in tl.events if e.name == "readback"][0]
        assert big.start == 10.0       # right after the upload
        assert readback.start == 16.0  # pushed behind the big transfer

    def test_ready_priority_interleaves(self):
        """Two dependency chains over shared resources interleave instead
        of running back to back."""
        s = ResourceScheduler()
        for f in range(2):
            up = s.add(f"up{f}", "transfer", 10.0, "dma")
            k = s.add(f"k{f}", "kernel", 10.0, "compute", deps=[up])
            s.add(f"down{f}", "transfer", 2.0, "dma", deps=[k])
        tl = s.schedule()
        # Chain 1's upload runs under chain 0's kernel:
        up1 = [e for e in tl.events if e.name == "up1"][0]
        assert up1.start == 10.0
        assert tl.total < 44.0  # serial would be 44

    def test_invalid_resource_rejected(self):
        s = ResourceScheduler()
        with pytest.raises(ValidationError, match="resource"):
            s.add("x", "kernel", 1.0, "tpu")

    def test_forward_dependency_rejected(self):
        s = ResourceScheduler()
        with pytest.raises(ValidationError, match="earlier"):
            s.add("x", "kernel", 1.0, "compute", deps=[0])

    def test_negative_duration_rejected(self):
        s = ResourceScheduler()
        with pytest.raises(ValidationError):
            s.add("x", "kernel", -1.0, "compute")

    def test_busy_times(self):
        s = ResourceScheduler()
        s.add("a", "transfer", 3.0, "dma")
        s.add("b", "kernel", 4.0, "compute")
        s.schedule()
        assert s.resource_busy_times() == {"dma": 3.0, "compute": 4.0,
                                           "host": 0.0}


class TestPipelinedSchedule:
    def test_every_kind_mapped(self):
        for kind in ("transfer", "kernel", "host", "sync"):
            assert KIND_TO_RESOURCE[kind] in ("dma", "compute", "host")

    def test_single_timeline_keeps_serial_order(self):
        tl = _tl(("a", "transfer", 5.0), ("b", "kernel", 5.0),
                 ("c", "transfer", 5.0))
        out = pipelined_schedule([tl])
        assert out.total == 15.0  # intra-frame chain is preserved

    def test_two_frames_overlap(self):
        frame = [("up", "transfer", 10.0), ("k", "kernel", 10.0),
                 ("down", "transfer", 2.0)]
        out = pipelined_schedule([_tl(*frame), _tl(*frame)])
        serial = 2 * 22.0
        assert out.total < serial
        # Lower bound: the busiest engine.
        assert out.total >= 24.0  # dma busy = 24

    def test_makespan_at_least_bottleneck(self):
        frame = [("up", "transfer", 7.0), ("k", "kernel", 3.0)]
        out = pipelined_schedule([_tl(*frame)] * 5)
        assert out.total >= 5 * 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            pipelined_schedule([])

    def test_events_preserve_durations(self):
        frame = [("up", "transfer", 10.0), ("k", "kernel", 5.0)]
        out = pipelined_schedule([_tl(*frame)] * 3)
        assert sum(e.duration for e in out.events) == 3 * 15.0

    def test_gantt_renders_overlap(self):
        frame = [("up", "transfer", 10.0), ("k", "kernel", 10.0)]
        out = pipelined_schedule([_tl(*frame)] * 2)
        chart = out.ascii_gantt(20)
        assert "f1:up" in chart
