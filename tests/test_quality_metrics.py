"""Image-quality metrics and their interaction with the pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algo import stages as algo
from repro.errors import ValidationError
from repro.types import SharpnessParams
from repro.util import images
from repro.util.metrics import (
    edge_energy,
    edge_gain,
    mse,
    overshoot_fraction,
    psnr,
    sharpness_report,
    ssim,
)


@pytest.fixture(scope="module")
def plane():
    return images.natural_like(64, 64, seed=17)


class TestFidelityMetrics:
    def test_identical_images(self, plane):
        assert mse(plane, plane) == 0.0
        assert psnr(plane, plane) == float("inf")
        assert ssim(plane, plane) == pytest.approx(1.0)

    def test_mse_known_value(self):
        a = np.zeros((16, 16))
        b = np.full((16, 16), 2.0)
        assert mse(a, b) == 4.0

    def test_psnr_known_value(self):
        a = np.zeros((16, 16))
        b = np.full((16, 16), 255.0)
        assert psnr(a, b) == pytest.approx(0.0)  # worst case

    def test_psnr_monotone_in_noise(self, plane, rng):
        small = np.clip(plane + rng.normal(0, 1, plane.shape), 0, 255)
        large = np.clip(plane + rng.normal(0, 10, plane.shape), 0, 255)
        assert psnr(plane, small) > psnr(plane, large)

    def test_ssim_degrades_with_noise(self, plane, rng):
        noisy = np.clip(plane + rng.normal(0, 25, plane.shape), 0, 255)
        assert ssim(plane, noisy) < ssim(plane, plane)

    def test_ssim_bounded(self, plane, rng):
        other = rng.uniform(0, 255, plane.shape)
        value = ssim(plane, other)
        assert -1.0 <= value <= 1.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            mse(np.zeros((8, 8)), np.zeros((8, 9)))

    def test_ssim_window_check(self):
        with pytest.raises(ValidationError, match="window"):
            ssim(np.zeros((4, 4)), np.zeros((4, 4)))


class TestEdgeMetrics:
    def test_flat_image_zero_energy(self):
        assert edge_energy(np.full((32, 32), 128.0)) == 0.0

    def test_edge_gain_flat_baseline(self):
        flat = np.full((32, 32), 128.0)
        assert edge_gain(flat, flat) == 1.0
        sharp = flat.copy()
        sharp[10:20, 10:20] = 250.0
        assert edge_gain(flat, sharp) == float("inf")

    def test_blur_reduces_edge_energy(self, plane):
        down = algo.downscale(plane)
        up = algo.upscale(down)
        assert edge_gain(plane, up) < 1.0

    def test_sharpen_increases_edge_energy_vs_blur(self, plane):
        out = algo.sharpen(plane)
        assert edge_gain(out["upscaled"], out["final"]) > 1.0


class TestOvershootFraction:
    def test_original_has_none(self, plane):
        assert overshoot_fraction(plane, plane) == 0.0

    def test_overshoot_zero_suppresses_halos(self, plane):
        params = SharpnessParams(gain=3.0, strength_max=8.0, overshoot=0.0)
        final = algo.sharpen(plane, params)["final"]
        assert overshoot_fraction(plane, final) == 0.0

    def test_full_overshoot_allows_halos(self):
        board = images.checkerboard(64, 64, cell=8)
        hard = SharpnessParams(gain=3.0, strength_max=8.0, overshoot=1.0)
        soft = SharpnessParams(gain=3.0, strength_max=8.0, overshoot=0.0)
        f_hard = algo.sharpen(board, hard)["final"]
        f_soft = algo.sharpen(board, soft)["final"]
        assert overshoot_fraction(board, f_hard) >= \
            overshoot_fraction(board, f_soft)

    @given(st.floats(min_value=0.0, max_value=1.0),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_fraction_in_unit_interval(self, osc, seed):
        plane = np.random.default_rng(seed).uniform(0, 255, (32, 32))
        params = SharpnessParams(gain=2.0, overshoot=osc)
        final = algo.sharpen(plane, params)["final"]
        frac = overshoot_fraction(plane, final)
        assert 0.0 <= frac <= 1.0


class TestReport:
    def test_all_keys_present(self, plane):
        final = algo.sharpen(plane)["final"]
        report = sharpness_report(plane, final)
        assert set(report) == {"psnr", "ssim", "edge_gain",
                               "overshoot_fraction", "rms_change"}

    def test_monotone_story(self, plane):
        """Stronger sharpening: lower fidelity, higher edge gain."""
        mild = algo.sharpen(plane, SharpnessParams(gain=0.5))["final"]
        strong = algo.sharpen(
            plane, SharpnessParams(gain=3.0, strength_max=8.0,
                                   overshoot=1.0))["final"]
        r_mild = sharpness_report(plane, mild)
        r_strong = sharpness_report(plane, strong)
        assert r_strong["edge_gain"] >= r_mild["edge_gain"]
        assert r_strong["psnr"] <= r_mild["psnr"]
