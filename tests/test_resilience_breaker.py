"""Circuit breaker state machine: closed -> open -> half-open -> closed."""

import io

import pytest

from repro.errors import ConfigError
from repro.obs import RunContext
from repro.resilience import CircuitBreaker
from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return Clock()


def make(clock, threshold=3, recovery=10.0, obs=None):
    return CircuitBreaker(threshold, recovery, name="test",
                          obs=obs, clock=clock)


class TestStateMachine:
    def test_starts_closed_and_allows(self, clock):
        breaker = make(clock)
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_trips_after_consecutive_failures(self, clock):
        breaker = make(clock, threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_success_resets_the_failure_streak(self, clock):
        breaker = make(clock, threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_half_open_after_recovery_window(self, clock):
        breaker = make(clock, threshold=1, recovery=10.0)
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(9.9)
        assert breaker.state == OPEN
        clock.advance(0.2)
        assert breaker.state == HALF_OPEN

    def test_half_open_admits_exactly_one_probe(self, clock):
        breaker = make(clock, threshold=1, recovery=1.0)
        breaker.record_failure()
        clock.advance(2.0)
        assert breaker.allow()        # the probe slot
        assert not breaker.allow()    # concurrent caller refused
        assert breaker.state == HALF_OPEN

    def test_probe_success_closes(self, clock):
        breaker = make(clock, threshold=1, recovery=1.0)
        breaker.record_failure()
        clock.advance(2.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_and_restarts_clock(self, clock):
        breaker = make(clock, threshold=1, recovery=10.0)
        breaker.record_failure()
        clock.advance(11.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(9.0)            # old window would have expired
        assert breaker.state == OPEN  # but the clock restarted
        clock.advance(2.0)
        assert breaker.state == HALF_OPEN

    def test_full_cycle_closed_open_half_open_closed(self, clock):
        breaker = make(clock, threshold=2, recovery=5.0)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(6.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED


class TestValidationAndMetrics:
    def test_invalid_config_rejected(self, clock):
        with pytest.raises(ConfigError):
            CircuitBreaker(0, 1.0, clock=clock)
        with pytest.raises(ConfigError):
            CircuitBreaker(1, -1.0, clock=clock)

    def test_state_gauge_and_transitions_exported(self, clock):
        obs = RunContext.create(log_level="error", log_stream=io.StringIO())
        breaker = make(clock, threshold=1, recovery=1.0, obs=obs)

        def gauge():
            family = obs.metrics.get("repro_breaker_state")
            return family.labels(breaker="test").value

        assert gauge() == 0
        breaker.record_failure()
        assert gauge() == 1
        clock.advance(2.0)
        assert breaker.state == HALF_OPEN
        assert gauge() == 2
        breaker.record_success()
        assert gauge() == 0

        transitions = obs.metrics.get("repro_breaker_transitions_total")
        by_target = {c.labels["to"]: c.value for c in transitions.children}
        assert by_target == {"open": 1, "half-open": 1, "closed": 1}
