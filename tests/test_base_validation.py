"""Input validation of the NDRange sizing helpers in kernels.base."""

import pytest

from repro.errors import InvalidWorkGroupError
from repro.kernels.base import ceil_div, pick_local_size, round_up
from repro.simgpu.device import W8000


def test_ceil_div_basic():
    assert ceil_div(7, 4) == 2
    assert ceil_div(8, 4) == 2
    assert ceil_div(0, 4) == 0


def test_ceil_div_rejects_negative_extent():
    with pytest.raises(InvalidWorkGroupError, match="extent must be >= 0"):
        ceil_div(-1, 4)


def test_ceil_div_rejects_nonpositive_divisor():
    with pytest.raises(InvalidWorkGroupError, match="divisor must be > 0"):
        ceil_div(4, 0)
    with pytest.raises(InvalidWorkGroupError, match="divisor must be > 0"):
        ceil_div(4, -2)


def test_round_up_basic():
    assert round_up(5, 4) == 8
    assert round_up(8, 4) == 8


def test_round_up_rejects_negatives():
    with pytest.raises(InvalidWorkGroupError, match="extent must be >= 0"):
        round_up(-5, 4)
    with pytest.raises(InvalidWorkGroupError, match="divisor must be > 0"):
        round_up(5, -4)


def test_pick_local_size_rejects_empty():
    with pytest.raises(InvalidWorkGroupError, match="empty global size"):
        pick_local_size((), W8000)


def test_pick_local_size_1d_rejects_nonpositive_with_clear_message():
    with pytest.raises(InvalidWorkGroupError) as exc:
        pick_local_size((0,), W8000)
    assert "must be positive in every dimension" in str(exc.value)
    assert "(0,)" in str(exc.value)


def test_pick_local_size_2d_rejects_nonpositive_dimension():
    with pytest.raises(InvalidWorkGroupError,
                       match="positive in every dimension"):
        pick_local_size((64, -4), W8000)


def test_pick_local_size_1d_still_divides():
    (size,) = pick_local_size((192,), W8000)
    assert 192 % size == 0
    assert size <= W8000.max_workgroup_size
