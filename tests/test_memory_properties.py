"""Property-based tests for the checked-memory layer (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GlobalMemoryError
from repro.simgpu.memory import CheckedArray, GlobalBuffer
from repro.types import Image


class TestCheckedArrayProperties:
    @given(st.integers(min_value=1, max_value=8),
           st.integers(min_value=1, max_value=8),
           st.data())
    @settings(max_examples=40, deadline=None)
    def test_in_bounds_roundtrip(self, h, w, data):
        arr = CheckedArray(np.zeros((h, w)))
        i = data.draw(st.integers(min_value=0, max_value=h - 1))
        j = data.draw(st.integers(min_value=0, max_value=w - 1))
        v = data.draw(st.floats(min_value=-1e6, max_value=1e6))
        arr[i, j] = v
        assert arr[i, j] == v

    @given(st.integers(min_value=1, max_value=8),
           st.integers(min_value=1, max_value=8),
           st.integers())
    @settings(max_examples=40, deadline=None)
    def test_linear_index_matches_row_major(self, h, w, k):
        data = np.arange(float(h * w)).reshape(h, w)
        arr = CheckedArray(data)
        if 0 <= k < h * w:
            assert arr[k] == data[k // w, k % w]
        else:
            with pytest.raises(GlobalMemoryError):
                arr[k]

    @given(st.integers(min_value=1, max_value=8),
           st.integers())
    @settings(max_examples=40, deadline=None)
    def test_1d_bounds(self, n, i):
        arr = CheckedArray(np.zeros(n))
        if 0 <= i < n:
            arr[i]
        else:
            with pytest.raises(GlobalMemoryError):
                arr[i]


class TestNonContiguousInputs:
    def test_image_from_transposed_view(self, rng):
        base = rng.uniform(0, 255, (32, 64))
        view = base.T  # non-contiguous
        img = Image.from_array(view)
        assert img.shape == (64, 32)
        assert np.array_equal(img.plane, np.ascontiguousarray(view))

    def test_image_from_strided_view(self, rng):
        base = rng.uniform(0, 255, (64, 64))
        view = base[::2, ::2]  # strided, 32x32
        img = Image.from_array(view)
        assert img.shape == (32, 32)

    def test_buffer_write_from_view(self, rng):
        buf = GlobalBuffer((16, 16))
        base = rng.uniform(0, 1, (32, 32))
        buf.write(base[::2, ::2])
        assert np.array_equal(buf.data, base[::2, ::2])

    def test_pipeline_accepts_fortran_order(self, rng):
        from repro.core import OPTIMIZED, GPUPipeline
        from repro.algo import stages as algo

        plane = np.asfortranarray(rng.uniform(0, 255, (32, 32)))
        res = GPUPipeline(OPTIMIZED).run(plane)
        expected = algo.sharpen(np.ascontiguousarray(plane))["final"]
        assert np.allclose(res.final, expected, atol=1e-9)
