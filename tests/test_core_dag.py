"""Intra-frame DAG overlap: dependency reconstruction and bounds."""

import pytest

from repro.core import (
    BASE,
    OPTIMIZED,
    GPUPipeline,
    overlap_single_run,
    serialization_overhead,
)
from repro.core.dag import READBACK, STAGE_DEPS, UPLOAD, _classify
from repro.errors import ValidationError
from repro.simgpu.profiling import Timeline
from repro.types import Image
from repro.util import images


@pytest.fixture(scope="module")
def run_result():
    img = Image.from_array(images.natural_like(256, 256, seed=31))
    return GPUPipeline(OPTIMIZED).run(img)


class TestClassification:
    def test_readback_split_from_uploads(self, run_result):
        stages = [_classify(e) for e in run_result.timeline.events]
        assert UPLOAD in stages
        assert READBACK in stages

    def test_every_stage_known(self, run_result):
        for flags in (BASE, OPTIMIZED):
            img = Image.from_array(images.natural_like(64, 64, seed=1))
            res = GPUPipeline(flags).run(img)
            for e in res.timeline.events:
                assert _classify(e) in STAGE_DEPS, e.stage


class TestOverlap:
    def test_never_slower_than_serial(self):
        img = Image.from_array(images.natural_like(128, 128, seed=2))
        for flags in (BASE, OPTIMIZED,
                      OPTIMIZED.with_(border_place="gpu")):
            res = GPUPipeline(flags).run(img)
            ov = overlap_single_run(res.timeline)
            assert ov.total <= res.total_time + 1e-15

    def test_bounded_by_busiest_engine(self, run_result):
        ov = overlap_single_run(run_result.timeline)
        by_kind = run_result.timeline.by_kind()
        dma = by_kind.get("transfer", 0.0)
        host = by_kind.get("host", 0.0)
        compute = run_result.total_time - dma - host
        assert ov.total >= max(dma, compute, host) - 1e-15

    def test_work_is_conserved(self, run_result):
        ov = overlap_single_run(run_result.timeline)
        assert sum(e.duration for e in ov.events) == pytest.approx(
            sum(e.duration for e in run_result.timeline.events))

    def test_dependencies_respected(self, run_result):
        """Sharpness cannot start before reduction ends; readback is
        last."""
        ov = overlap_single_run(run_result.timeline)
        by_name = {}
        for e in ov.events:
            by_name.setdefault(e.name.split(":")[0], []).append(e)
        sharp = [e for e in ov.events if "sharpness" in e.name][0]
        red_end = max(e.end for e in ov.events if "reduction" in e.name)
        assert sharp.start >= red_end - 1e-15
        readback = [e for e in ov.events if e.name.startswith("read:final")]
        assert readback and readback[0].start >= sharp.end - 1e-15

    def test_sobel_overlaps_border_roundtrip(self, run_result):
        """The headline win: Sobel only needs the upload, so it runs while
        the CPU-border transfers are in flight (256^2 -> border on CPU)."""
        ov = overlap_single_run(run_result.timeline)
        sobel = [e for e in ov.events if "sobel" in e.name][0]
        border_events = [e for e in ov.events
                         if "down" in e.name or "border" in e.name
                         or e.name == "write:up"]
        border_span = (min(e.start for e in border_events),
                       max(e.end for e in border_events))
        assert sobel.start < border_span[1]  # concurrent, not after

    def test_serialization_overhead_in_unit_interval(self):
        img = Image.from_array(images.natural_like(64, 64, seed=3))
        for flags in (BASE, OPTIMIZED):
            res = GPUPipeline(flags).run(img)
            s = serialization_overhead(res.timeline)
            assert 0.0 <= s < 1.0

    def test_empty_timeline_rejected(self):
        with pytest.raises(ValidationError):
            overlap_single_run(Timeline())

    def test_unknown_stage_rejected(self):
        tl = Timeline()
        tl.record("weird", "kernel", 1e-3, stage="mystery")
        with pytest.raises(ValidationError, match="unknown"):
            overlap_single_run(tl)
