"""Fault plan: spec grammar, deterministic schedules, site accounting."""

import io

import pytest

from repro.errors import (
    DeviceOOMError,
    FaultSpecError,
    KernelLaunchFault,
    TransferFault,
    WorkerCrashError,
    is_transient,
)
from repro.obs import RunContext
from repro.resilience import FaultPlan
from repro.resilience.faults import SITES, SiteSpec


def quiet_obs(faults=None):
    return RunContext.create(log_level="error", log_stream=io.StringIO(),
                             faults=faults)


class TestSpecParsing:
    def test_single_site(self):
        plan = FaultPlan.parse("transfer:rate=0.2,kind=transient")
        spec = plan.sites["transfer"]
        assert spec.rate == 0.2
        assert spec.kind == "transient"
        assert plan.seed == 0

    def test_rate_shorthand_and_seed(self):
        plan = FaultPlan.parse("kernel:1.0,kind=permanent;seed=7")
        assert plan.sites["kernel"].rate == 1.0
        assert plan.sites["kernel"].kind == "permanent"
        assert plan.seed == 7

    def test_multi_site_with_after_and_max(self):
        plan = FaultPlan.parse("oom:rate=0.05;worker:rate=0.01,max=2,after=3")
        assert plan.sites["oom"].rate == 0.05
        assert plan.sites["worker"].max_faults == 2
        assert plan.sites["worker"].after == 3

    def test_describe_roundtrips(self):
        plan = FaultPlan.parse("transfer:rate=0.2;kernel:0.1,kind=permanent;"
                               "seed=3")
        again = FaultPlan.parse(plan.describe())
        assert again.sites == plan.sites
        assert again.seed == plan.seed

    @pytest.mark.parametrize("spec", [
        "",
        "   ",
        "seed=5",                      # no sites configured
        "transfer",                    # missing params
        "transfer:",                   # empty params
        "nosuchsite:rate=0.5",
        "transfer:rate=1.5",           # rate out of range
        "transfer:rate=-0.1",
        "transfer:rate=abc",
        "transfer:kind=flaky",
        "transfer:after=-1",
        "transfer:max=-2",
        "transfer:bogus=1",
        "transfer:rate=0.5;transfer:rate=0.1",  # duplicate site
        "transfer:rate=0.5;seed=x",
    ])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(FaultSpecError):
            FaultPlan.parse(spec)

    def test_unknown_site_in_constructor(self):
        with pytest.raises(FaultSpecError):
            FaultPlan({"dma": SiteSpec(rate=0.1)})


class TestInjection:
    def test_rate_one_always_fires(self):
        plan = FaultPlan.parse("transfer:rate=1.0")
        with pytest.raises(TransferFault):
            plan.check("transfer")
        assert plan.injected["transfer"] == 1
        assert plan.checks["transfer"] == 1

    def test_rate_zero_and_unconfigured_sites_never_fire(self):
        plan = FaultPlan.parse("transfer:rate=0.0;kernel:rate=1.0")
        for _ in range(50):
            plan.check("transfer")
        plan.check("oom")  # not configured at all
        assert plan.injected.get("transfer", 0) == 0

    def test_site_error_classes(self):
        cases = {
            "transfer": TransferFault,
            "kernel": KernelLaunchFault,
            "oom": DeviceOOMError,
            "worker": WorkerCrashError,
        }
        # hang is the odd one out: it stalls instead of raising (see
        # test_hang_site_* below), so it is excluded here.
        assert set(cases) | {"hang"} == set(SITES)
        for site, exc_type in cases.items():
            plan = FaultPlan.parse(f"{site}:rate=1.0")
            with pytest.raises(exc_type) as exc_info:
                plan.check(site)
            assert exc_info.value.injected is True

    def test_hang_site_stalls_then_continues(self):
        plan = FaultPlan.parse("hang:rate=1.0,seconds=0.0")
        plan.check("hang")  # zero-second stall: returns, never raises
        assert plan.injected["hang"] == 1

    def test_hang_site_cancel_raises_frame_hang_error(self):
        import threading

        from repro.errors import FrameHangError

        cancel = threading.Event()
        cancel.set()  # pre-cancelled: the stall aborts on first poll
        plan = FaultPlan.parse("hang:rate=1.0,seconds=30")
        with pytest.raises(FrameHangError) as exc_info:
            plan.check("hang", cancel=cancel)
        assert exc_info.value.injected is True
        assert not is_transient(exc_info.value)

    def test_hang_seconds_rejected_elsewhere(self):
        with pytest.raises(FaultSpecError):
            FaultPlan.parse("transfer:rate=0.5,seconds=3")

    def test_kind_controls_transience(self):
        plan = FaultPlan.parse("transfer:rate=1.0,kind=permanent;"
                               "kernel:rate=1.0,kind=transient")
        with pytest.raises(TransferFault) as exc_info:
            plan.check("transfer")
        assert not is_transient(exc_info.value)
        with pytest.raises(KernelLaunchFault) as exc_info:
            plan.check("kernel")
        assert is_transient(exc_info.value)

    def test_after_skips_initial_checks(self):
        plan = FaultPlan.parse("transfer:rate=1.0,after=3")
        for _ in range(3):
            plan.check("transfer")
        with pytest.raises(TransferFault):
            plan.check("transfer")

    def test_max_caps_injections(self):
        plan = FaultPlan.parse("transfer:rate=1.0,max=2")
        for _ in range(2):
            with pytest.raises(TransferFault):
                plan.check("transfer")
        for _ in range(10):
            plan.check("transfer")  # cap reached: no more faults
        assert plan.injected["transfer"] == 2
        assert plan.total_injected() == 2

    def test_schedule_is_deterministic_per_seed(self):
        def fire_pattern(seed):
            plan = FaultPlan.parse(f"transfer:rate=0.3;seed={seed}")
            pattern = []
            for _ in range(64):
                try:
                    plan.check("transfer")
                    pattern.append(False)
                except TransferFault:
                    pattern.append(True)
            return pattern

        assert fire_pattern(5) == fire_pattern(5)
        assert fire_pattern(5) != fire_pattern(6)

    def test_sites_draw_independent_streams(self):
        plan = FaultPlan.parse("transfer:rate=0.5;kernel:rate=0.5;seed=1")

        def pattern(site):
            out = []
            for _ in range(32):
                try:
                    plan.check(site)
                    out.append(False)
                except Exception:
                    out.append(True)
            return out

        assert pattern("transfer") != pattern("kernel")

    def test_metric_and_log_on_injection(self):
        plan = FaultPlan.parse("transfer:rate=1.0,max=3")
        stream = io.StringIO()
        obs = RunContext.create(log_level="warning", log_stream=stream,
                                faults=plan)
        for _ in range(3):
            with pytest.raises(TransferFault):
                plan.check("transfer", obs, detail="unit-test")
        counter = obs.metrics.get("repro_faults_injected_total")
        assert counter.labels(site="transfer").value == 3
        assert "fault.injected" in stream.getvalue()
