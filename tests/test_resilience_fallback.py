"""FallbackPipeline: retries, degradation semantics, bit-equivalence."""

import io

import numpy as np
import pytest

from repro.core import GPUPipeline, OPTIMIZED
from repro.cpu import CPUPipeline
from repro.errors import CircuitOpenError, TransferFault
from repro.obs import RunContext
from repro.resilience import (
    FallbackPipeline,
    FaultPlan,
    ResilienceConfig,
    RetryPolicy,
)
from repro.resilience.breaker import CLOSED, OPEN
from repro.resilience.fallback import BACKEND_CPU_FALLBACK, BACKEND_GPU
from repro.types import Image
from repro.util import images


@pytest.fixture(scope="module")
def frame():
    return Image.from_array(next(iter(images.video_sequence(48, 48, 1,
                                                            seed=9))))


def quiet_obs(faults=None):
    return RunContext.create(log_level="error", log_stream=io.StringIO(),
                             faults=faults)


def fast_config(**overrides):
    kwargs = dict(retry=RetryPolicy(max_attempts=3, base_delay=0.0),
                  breaker_failures=2, breaker_recovery_s=60.0)
    kwargs.update(overrides)
    return ResilienceConfig(**kwargs)


class TestHealthyPath:
    def test_gpu_result_flagged_and_identical(self, frame):
        plain = GPUPipeline(OPTIMIZED).run(frame)
        resilient = FallbackPipeline(GPUPipeline(OPTIMIZED),
                                     fast_config()).run(frame)
        assert resilient.backend == BACKEND_GPU
        assert np.array_equal(resilient.final, plain.final)

    def test_transient_faults_retried_transparently(self, frame):
        plan = FaultPlan.parse("transfer:rate=1.0,max=2,kind=transient")
        obs = quiet_obs(faults=plan)
        pipe = FallbackPipeline(GPUPipeline(OPTIMIZED, obs=obs),
                                fast_config(retry=RetryPolicy(
                                    max_attempts=5, base_delay=0.0)),
                                obs=obs)
        result = pipe.run(frame)
        assert result.backend == BACKEND_GPU
        assert plan.injected["transfer"] == 2
        assert pipe.breaker.state == CLOSED


class TestDegradation:
    def test_fallback_bit_equivalent_to_cpu_optimized(self, frame):
        plan = FaultPlan.parse("transfer:rate=1.0,kind=permanent")
        obs = quiet_obs(faults=plan)
        pipe = FallbackPipeline(GPUPipeline(OPTIMIZED, obs=obs),
                                fast_config(), obs=obs)
        result = pipe.run(frame)
        assert result.backend == BACKEND_CPU_FALLBACK
        cpu = CPUPipeline().run(frame)
        assert np.array_equal(result.final, cpu.final)
        assert result.edge_mean == cpu.edge_mean
        # host-only timeline: no device or transfer events
        assert set(e.kind for e in result.timeline.events) == {"host"}
        assert result.kernel_launches == 0

    def test_breaker_trips_then_routes_without_touching_gpu(self, frame):
        plan = FaultPlan.parse("transfer:rate=1.0,kind=permanent")
        obs = quiet_obs(faults=plan)
        pipe = FallbackPipeline(GPUPipeline(OPTIMIZED, obs=obs),
                                fast_config(breaker_failures=2), obs=obs)
        for _ in range(2):
            pipe.run(frame)
        assert pipe.breaker.state == OPEN
        checks_before = plan.checks["transfer"]
        result = pipe.run(frame)  # breaker open: straight to CPU
        assert result.backend == BACKEND_CPU_FALLBACK
        assert plan.checks["transfer"] == checks_before
        fb = obs.metrics.get("repro_fallback_frames_total")
        reasons = {c.labels["reason"]: c.value for c in fb.children}
        assert reasons["breaker-open"] == 1

    def test_half_open_probe_recovers_the_gpu_path(self, frame):
        clock = [0.0]
        plan = FaultPlan.parse("transfer:rate=1.0,max=2,kind=permanent")
        obs = quiet_obs(faults=plan)
        pipe = FallbackPipeline(
            GPUPipeline(OPTIMIZED, obs=obs),
            fast_config(breaker_failures=2, breaker_recovery_s=60.0,
                        retry=RetryPolicy(max_attempts=1)),
            obs=obs)
        pipe.breaker.clock = lambda: clock[0]
        for _ in range(2):
            assert pipe.run(frame).backend == BACKEND_CPU_FALLBACK
        assert pipe.breaker.state == OPEN
        clock[0] += 61.0  # recovery window passes; fault plan is spent
        result = pipe.run(frame)  # the half-open probe
        assert result.backend == BACKEND_GPU
        assert pipe.breaker.state == CLOSED

    def test_no_fallback_propagates_the_error(self, frame):
        plan = FaultPlan.parse("transfer:rate=1.0,kind=permanent")
        obs = quiet_obs(faults=plan)
        pipe = FallbackPipeline(GPUPipeline(OPTIMIZED, obs=obs),
                                fast_config(fallback=False,
                                            breaker_failures=1), obs=obs)
        with pytest.raises(TransferFault):
            pipe.run(frame)
        assert pipe.breaker.state == OPEN
        with pytest.raises(CircuitOpenError):
            pipe.run(frame)

    def test_unknown_errors_not_masked_by_fallback(self, frame):
        class Broken:
            params = GPUPipeline(OPTIMIZED).params
            cpu = None
            obs = None

            def run(self, image):
                raise RuntimeError("not a repro error")

        pipe = FallbackPipeline(Broken(), fast_config(breaker_failures=1),
                                cpu=CPUPipeline(), obs=quiet_obs())
        with pytest.raises(RuntimeError):
            pipe.run(frame)
        assert pipe.breaker.state == OPEN
