#!/usr/bin/env python3
"""Inspect the simulated execution: ASCII Gantt + Chrome trace export.

Renders the in-order pipeline timeline for one image, then the pipelined
(copy/compute-overlapped) schedule for a short frame stream, and writes both
as Chrome trace JSON files you can open at https://ui.perfetto.dev or
chrome://tracing.

Usage::

    python examples/trace_viewer.py [outdir]   # default ./traces_out
"""

import pathlib
import sys

from repro import GPUPipeline, Image, OPTIMIZED
from repro.core import StreamProcessor
from repro.util import images


def main() -> None:
    outdir = pathlib.Path(sys.argv[1] if len(sys.argv) > 1
                          else "traces_out")
    outdir.mkdir(exist_ok=True)

    # --- one in-order pipeline run -------------------------------------
    image = Image.from_array(images.natural_like(1024, 1024, seed=5))
    res = GPUPipeline(OPTIMIZED).run(image)
    print("In-order optimized pipeline at 1024x1024:\n")
    print(res.timeline.ascii_gantt(60))
    single_path = outdir / "pipeline_1024.trace.json"
    res.timeline.write_chrome_trace(single_path)

    # --- a pipelined 3-frame stream -------------------------------------
    frames = images.video_sequence(1024, 1024, 3, seed=5)
    stream = StreamProcessor(OPTIMIZED, overlap_transfers=True).run(frames)
    serial = sum(f.serial_time for f in stream.frames)
    print("\n\nPipelined 3-frame stream (copy/compute overlap):\n")
    print(stream.pipelined_timeline.ascii_gantt(60))
    print(f"\nserial {serial * 1e3:.2f} ms -> pipelined "
          f"{stream.total_time * 1e3:.2f} ms "
          f"({serial / stream.total_time:.2f}x)")
    stream_path = outdir / "stream_3x1024.trace.json"
    stream.pipelined_timeline.write_chrome_trace(stream_path)

    print(f"\nwrote {single_path} and {stream_path}")
    print("open them at https://ui.perfetto.dev to see the DMA/compute/"
          "host rows.")


if __name__ == "__main__":
    main()
