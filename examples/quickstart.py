#!/usr/bin/env python3
"""Quickstart: sharpen one image on the CPU baseline and the simulated GPU.

Runs the paper's pipeline end to end, verifies both implementations agree,
and prints the simulated speedup with the Fig.-13-style stage breakdown.

Usage::

    python examples/quickstart.py [side]   # default 512
"""

import sys

import numpy as np

from repro import (
    CPUPipeline,
    GPUPipeline,
    Image,
    OPTIMIZED,
    SharpnessParams,
)
from repro.util import images


def main() -> None:
    side = int(sys.argv[1]) if len(sys.argv) > 1 else 512
    print(f"Sharpening a {side}x{side} synthetic 'natural' image\n")

    image = Image.from_array(images.natural_like(side, side, seed=42))
    params = SharpnessParams(gain=1.2, gamma=0.5, strength_max=4.0,
                             overshoot=0.25)

    cpu = CPUPipeline(params).run(image)
    gpu = GPUPipeline(OPTIMIZED, params).run(image)

    # The simulated GPU must produce the same image as the CPU baseline.
    max_err = float(np.max(np.abs(cpu.final - gpu.final)))
    assert max_err < 1e-6, f"implementations diverged by {max_err}"

    print(f"CPU baseline (i5-3470 model):   {cpu.total_time * 1e3:8.2f} ms")
    print(f"GPU optimized (W8000 model):    {gpu.total_time * 1e3:8.2f} ms")
    print(f"simulated speedup:              "
          f"{cpu.total_time / gpu.total_time:8.1f}x")
    print(f"outputs agree to               {max_err:.2e}\n")

    print("GPU stage breakdown:")
    for stage, frac in sorted(gpu.times.fractions().items(),
                              key=lambda kv: -kv[1]):
        seconds = gpu.times.times[stage]
        print(f"  {stage:10s} {seconds * 1e6:9.1f} us  ({100 * frac:5.1f}%)")

    sharpened = gpu.final_u8()
    edge_in = np.abs(np.diff(image.plane, axis=1)).mean()
    edge_out = np.abs(np.diff(sharpened.astype(float), axis=1)).mean()
    print(f"\nmean horizontal contrast: {edge_in:.2f} -> {edge_out:.2f} "
          f"({edge_out / edge_in:.2f}x)")


if __name__ == "__main__":
    main()
