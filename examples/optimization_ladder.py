#!/usr/bin/env python3
"""Walk the paper's optimization ladder (Fig. 14) on one image.

Shows what each of the five techniques buys at your chosen image size, with
the stage that each step attacks.

Usage::

    python examples/optimization_ladder.py [side]   # default 1024
"""

import sys

from repro import GPUPipeline, Image, LADDER
from repro.util import images

STEP_NOTES = {
    "base": "naive port: map/unmap, 6 scalar kernels, reduction+border "
            "on CPU",
    "transfer+fusion": "V.A + V.B: read/write + padded-only rect "
                       "transfer; pError/prelim/overshoot fused",
    "+reduction": "V.C: two-stage tree reduction on GPU, last wavefront "
                  "unrolled",
    "+vector+border": "V.D + V.E: 4-wide Sobel/sharpness/center; border "
                      "placed by the 768 heuristic",
    "+others": "V.F: clFinish removed, built-ins, shift/mask instruction "
               "selection",
}


def main() -> None:
    side = int(sys.argv[1]) if len(sys.argv) > 1 else 1024
    image = Image.from_array(images.natural_like(side, side, seed=7))
    print(f"Optimization ladder at {side}x{side}\n")

    base_time = None
    prev_time = None
    for name, flags in LADDER:
        res = GPUPipeline(flags).run(image)
        t = res.total_time
        if base_time is None:
            base_time = t
        step_gain = prev_time / t if prev_time else 1.0
        print(f"{name:16s} {t * 1e3:9.3f} ms   "
              f"vs base {base_time / t:5.2f}x   step {step_gain:5.2f}x")
        print(f"{'':16s} {STEP_NOTES[name]}")
        top = max(res.times.fractions().items(), key=lambda kv: kv[1])
        print(f"{'':16s} heaviest stage now: {top[0]} "
              f"({100 * top[1]:.0f}%)\n")
        prev_time = t


if __name__ == "__main__":
    main()
