#!/usr/bin/env python3
"""Real-time TV sharpening: the workload the paper's introduction motivates.

Simulates sharpening a panning full-HD (1920x1080) brightness sequence with
the base and the optimized GPU pipelines and reports whether each sustains
real-time frame rates (25/30/60 fps) under the simulated device times.

Usage::

    python examples/tv_realtime.py [n_frames]   # default 6
"""

import sys

from repro import BASE, CPUPipeline, GPUPipeline, Image, OPTIMIZED
from repro.core import StreamProcessor
from repro.util import images

WIDTH, HEIGHT = 1920, 1080
TARGETS_FPS = (25.0, 30.0, 60.0)


def describe(name: str, frame_time: float) -> None:
    fps = 1.0 / frame_time
    verdict = "  ".join(
        f"{int(t)}fps:{'yes' if fps >= t else 'NO '}" for t in TARGETS_FPS
    )
    print(f"  {name:22s} {frame_time * 1e3:8.2f} ms/frame "
          f"({fps:6.1f} fps)   {verdict}")


def main() -> None:
    n_frames = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    print(f"Sharpening {n_frames} panning frames at {WIDTH}x{HEIGHT}\n")

    frames = [Image.from_array(f) for f in
              images.video_sequence(HEIGHT, WIDTH, n_frames, seed=3)]

    pipelines = {
        "CPU baseline": CPUPipeline(),
        "GPU base port": GPUPipeline(BASE),
        "GPU optimized": GPUPipeline(OPTIMIZED),
    }

    print("Per-frame simulated times (mean over the sequence):")
    for name, pipe in pipelines.items():
        total = 0.0
        for frame in frames:
            total += pipe.run(frame).total_time
        describe(name, total / n_frames)

    # Going beyond the paper: double-buffered copy/compute overlap.
    stream = StreamProcessor(OPTIMIZED, overlap_transfers=True).run(frames)
    describe("GPU opt + overlap", stream.mean_frame_time)
    print(f"\n  (PCI-E transfers are {100 * stream.transfer_share:.0f}% of "
          "the serial frame time — the overlap\n  headroom double "
          "buffering exploits.)")

    print(
        "\nThe optimized pipeline is what makes real-time HD sharpening "
        "feasible on the\nsimulated W8000 — the same conclusion the paper "
        "draws for its TV use case."
    )


if __name__ == "__main__":
    main()
