#!/usr/bin/env python3
"""Parameter-tuning gallery: how the user parameters shape the output.

Sharpens a text-like image (the classic showcase for sharpening) under a
grid of tuning parameters, reports objective metrics, and writes the outputs
as PGM files you can open in any image viewer.

Usage::

    python examples/tuning_gallery.py [outdir]   # default ./gallery_out
"""

import pathlib
import sys

from repro import GPUPipeline, Image, OPTIMIZED
from repro.presets import PRESET_ORDER, PRESETS
from repro.util import images
from repro.util.io import write_pgm
from repro.util.metrics import sharpness_report


def main() -> None:
    outdir = pathlib.Path(sys.argv[1] if len(sys.argv) > 1
                          else "gallery_out")
    outdir.mkdir(exist_ok=True)

    plane = images.text_like(256, 256, seed=1)
    image = Image.from_array(plane)
    write_pgm(outdir / "original.pgm", image.to_u8())

    grid = [(name, PRESETS[name]) for name in PRESET_ORDER]

    print(f"{'preset':14s} {'PSNR':>7s} {'SSIM':>7s} {'edge gain':>10s} "
          f"{'halo px':>8s} {'rms':>6s}")
    for name, params in grid:
        res = GPUPipeline(OPTIMIZED, params).run(image)
        m = sharpness_report(plane, res.final)
        write_pgm(outdir / f"{name}.pgm", res.final_u8())
        print(f"{name:14s} {m['psnr']:>6.1f}dB {m['ssim']:>7.3f} "
              f"{m['edge_gain']:>9.2f}x "
              f"{100 * m['overshoot_fraction']:>7.2f}% "
              f"{m['rms_change']:>6.2f}")

    print(f"\nwrote {len(grid) + 1} PGM files to {outdir}/")
    print("note how overshoot=0.0 clips halos at the local extrema while "
          "keeping the\nedge boost — the exact job of Fig. 8's overshoot "
          "control.")


if __name__ == "__main__":
    main()
