#!/usr/bin/env python3
"""What-if studies on the simulated hardware.

The cost model is parameterized by the device spec, so questions the paper
could only answer with different hardware are one ``with_()`` away:

* How does the border CPU/GPU crossover move with PCI-E bandwidth?
* What would a narrower wavefront do to the unrolled reduction?
* How much of the optimized pipeline is PCI-E-bound at each size?

Usage::

    python examples/device_whatif.py
"""

from repro import GPUPipeline, Image, OPTIMIZED, W8000
from repro.core.heuristics import border_crossover_side
from repro.experiments import fig15_unroll
from repro.simgpu.pcie import PCIeSpec
from repro.util import images


def crossover_vs_pcie() -> None:
    print("Border CPU/GPU crossover vs PCI-E bandwidth "
          "(paper: 768 at ~4 GB/s)")
    for bw in (2.0, 4.0, 8.0, 16.0):
        dev = W8000.with_(pcie=PCIeSpec(bandwidth_gbps=bw))
        side = border_crossover_side(dev)
        print(f"  {bw:5.1f} GB/s -> crossover at {side}x{side}")
    print("  faster links make the CPU round-trip cheaper, pushing the "
          "crossover up.\n")


def reduction_vs_wavefront() -> None:
    print("Unrolled-reduction advantage vs wavefront width (4096x4096)")
    n = 4096 * 4096
    for wf in (16, 32, 64):
        dev = W8000.with_(wavefront_size=wf)
        u1 = fig15_unroll.reduction_gpu_time(n, unroll=1, device=dev)
        u0 = fig15_unroll.reduction_gpu_time(n, unroll=0, device=dev)
        print(f"  wavefront {wf:3d}: plain tree {u0 * 1e6:7.1f} us, "
              f"unrolled {u1 * 1e6:7.1f} us ({u0 / u1:.2f}x)")
    print("  NOTE: the unrolled kernel is only *correct* for wavefront 64 "
          "(it hardcodes\n  GCN lock-step — the test suite demonstrates "
          "the silent corruption on\n  narrower devices).\n")


def transfer_share() -> None:
    print("PCI-E share of the optimized pipeline")
    for side in (256, 1024, 2048):
        image = Image.from_array(images.natural_like(side, side, seed=0))
        res = GPUPipeline(OPTIMIZED).run(image)
        transfer = res.timeline.by_kind().get("transfer", 0.0)
        print(f"  {side:4d}x{side:<4d}: {100 * transfer / res.total_time:5.1f}% "
              f"of {res.total_time * 1e3:7.2f} ms")
    print("  the transfer floor is why GPU image pipelines chain kernels "
          "on-device\n  instead of round-tripping per stage.")


def main() -> None:
    crossover_vs_pcie()
    reduction_vs_wavefront()
    transfer_share()


if __name__ == "__main__":
    main()
