"""Setup shim: enables legacy editable installs (`pip install -e .`) in
offline environments without the `wheel` package.  All metadata lives in
pyproject.toml."""

from setuptools import setup

setup()
